"""Docs stay true: links resolve, the README catalog matches the registry.

Runs the same checks as the CI ``docs`` job (``tools/check_docs.py``), so
a renamed sweep or a broken relative link fails `pytest` locally before
it fails in CI — plus unit tests of the checker itself, so the checker
failing to *detect* breakage is also a test failure.
"""

import importlib.util
import pathlib

ROOT = pathlib.Path(__file__).resolve().parent.parent

_spec = importlib.util.spec_from_file_location(
    "check_docs", ROOT / "tools" / "check_docs.py"
)
check_docs = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_docs)


class TestRepositoryDocs:
    def test_all_markdown_links_resolve(self):
        assert check_docs.check_links(ROOT) == []

    def test_readme_catalog_matches_registry(self):
        assert check_docs.check_registry_sync(ROOT) == []

    def test_architecture_doc_exists_and_is_linked(self):
        """The acceptance criterion in one place: docs/ARCHITECTURE.md
        exists and both README and ROADMAP point at it."""
        assert (ROOT / "docs" / "ARCHITECTURE.md").exists()
        assert "docs/ARCHITECTURE.md" in (ROOT / "README.md").read_text()
        assert "docs/ARCHITECTURE.md" in (ROOT / "ROADMAP.md").read_text()


class TestCheckerDetectsBreakage:
    def test_broken_relative_link_is_reported(self, tmp_path):
        (tmp_path / "a.md").write_text("see [missing](nope.md)")
        errors = check_docs.check_links(tmp_path)
        assert len(errors) == 1 and "nope.md" in errors[0]

    def test_broken_heading_anchor_is_reported(self, tmp_path):
        (tmp_path / "a.md").write_text("# Only Heading\n")
        (tmp_path / "b.md").write_text("[x](a.md#other-heading)")
        errors = check_docs.check_links(tmp_path)
        assert len(errors) == 1 and "missing heading" in errors[0]

    def test_valid_links_pass(self, tmp_path):
        (tmp_path / "a.md").write_text(
            "# My Heading\n[self](#my-heading) [ext](https://example.com)\n"
        )
        (tmp_path / "b.md").write_text("[x](a.md#my-heading) [y](a.md)")
        assert check_docs.check_links(tmp_path) == []

    def test_links_inside_code_fences_are_ignored(self, tmp_path):
        (tmp_path / "a.md").write_text(
            "```\n[not a link](nope.md)\n```\nreal text\n"
        )
        assert check_docs.check_links(tmp_path) == []

    def test_table_names_parses_first_column(self):
        readme = (
            "### Sweeps\n\n"
            "| sweep | what | run |\n| --- | --- | --- |\n"
            "| `alpha` | a | `repro sweep alpha` |\n"
            "| `beta` | b | `repro sweep beta` |\n\n"
            "### Trial functions\n\n| trial |\n| --- |\n| `gamma` |\n"
        )
        assert check_docs.table_names(readme, "### Sweeps") == {
            "alpha", "beta",
        }
        assert check_docs.table_names(readme, "### Trial functions") == {
            "gamma"
        }

    def test_registry_names_cover_all_kinds(self):
        names = check_docs.registry_names()
        assert {"figures", "sweeps", "trials"} == set(names)
        assert "preemption_tradeoff" in names["figures"]
        assert "paged" in names["sweeps"]
        assert "serving_slo" in names["trials"]
