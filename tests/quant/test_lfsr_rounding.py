"""Unit tests for the LFSR model and rounding primitives."""

import numpy as np
import pytest

from repro.quant.lfsr import Lfsr
from repro.quant.rounding import (
    RoundingMode,
    round_lattice,
    round_nearest_even,
    round_stochastic,
)


class TestLfsr:
    def test_rejects_zero_seed(self):
        with pytest.raises(ValueError):
            Lfsr(16, seed=0)

    def test_rejects_unknown_width(self):
        with pytest.raises(ValueError):
            Lfsr(13)

    def test_eight_bit_polynomial_is_maximal_length(self):
        assert Lfsr(8, seed=1).period_lower_bound() == 255

    def test_sixteen_bit_polynomial_is_maximal_length(self):
        assert Lfsr(16, seed=1).period_lower_bound(limit=1 << 17) == 65535

    def test_uniform_in_unit_interval(self):
        lfsr = Lfsr(16, seed=0x1234)
        draws = [lfsr.uniform() for _ in range(1000)]
        assert all(0.0 <= d < 1.0 for d in draws)
        assert 0.4 < np.mean(draws) < 0.6

    def test_next_bits_range(self):
        lfsr = Lfsr(16, seed=7)
        vals = lfsr.sequence(200, nbits=6)
        assert vals.min() >= 0 and vals.max() < 64

    def test_deterministic_given_seed(self):
        a = Lfsr(16, seed=42).sequence(50, 8)
        b = Lfsr(16, seed=42).sequence(50, 8)
        assert np.array_equal(a, b)


class TestRounding:
    def test_nearest_even_ties(self):
        x = np.array([0.5, 1.5, 2.5, -0.5])
        assert np.array_equal(round_nearest_even(x), [0.0, 2.0, 2.0, -0.0])

    def test_stochastic_mean_converges(self):
        rng = np.random.default_rng(0)
        x = np.full(50000, 0.3)
        r = round_stochastic(x, rng)
        assert set(np.unique(r)) <= {0.0, 1.0}
        assert abs(r.mean() - 0.3) < 0.01

    def test_lattice_dispatch(self):
        x = np.array([1.4])
        assert round_lattice(x, RoundingMode.NEAREST)[0] == 1.0

    def test_lattice_stochastic_requires_rng(self):
        with pytest.raises(ValueError):
            round_lattice(np.array([1.4]), RoundingMode.STOCHASTIC)

    def test_integers_are_fixed_points_both_modes(self):
        rng = np.random.default_rng(1)
        x = np.arange(-5.0, 6.0)
        assert np.array_equal(round_lattice(x, RoundingMode.NEAREST), x)
        assert np.array_equal(round_lattice(x, RoundingMode.STOCHASTIC, rng), x)
