"""Unit tests for the hardware MX multiplier/adder/dot-product units."""

import numpy as np
import pytest

from repro.quant.arithmetic import DotProductUnit, MxAdder, MxMultiplier
from repro.quant.lfsr import Lfsr
from repro.quant.mx import GROUP_SIZE, MANTISSA_BITS, MANTISSA_MAX, MxBlock


def _random_block(rng, scale=1.0):
    return MxBlock.encode(rng.normal(scale=scale, size=GROUP_SIZE))


class TestMxMultiplier:
    def test_matches_float_product_within_ulp(self):
        rng = np.random.default_rng(0)
        a, b = _random_block(rng), _random_block(rng, scale=4.0)
        out = MxMultiplier()(a, b)
        exact = a.decode() * b.decode()
        ulp = 2.0 ** (out.exp - MANTISSA_BITS)
        assert np.all(np.abs(out.decode() - exact) <= ulp)

    def test_exponents_add(self):
        rng = np.random.default_rng(1)
        a, b = _random_block(rng), _random_block(rng)
        out = MxMultiplier()(a, b)
        assert out.exp == a.exp + b.exp

    def test_microexponent_saturation_shifts_mantissa(self):
        # Both operands with micro=1 on pair 0 -> sum 2 saturates to 1 and
        # the pair's product mantissas shift by one extra bit.
        micro = np.zeros(8, dtype=np.int64)
        micro[0] = 1
        mant = np.full(16, 32, dtype=np.int64)
        a = MxBlock(exp=0, micro=micro.copy(), mant=mant.copy())
        b = MxBlock(exp=0, micro=micro.copy(), mant=mant.copy())
        out = MxMultiplier()(a, b)
        assert out.micro[0] == 1
        exact = a.decode() * b.decode()
        ulp = 2.0 ** (out.exp - MANTISSA_BITS)
        assert np.all(np.abs(out.decode() - exact) <= ulp)

    def test_mantissa_never_overflows(self):
        a = MxBlock(exp=3, micro=np.zeros(8), mant=np.full(16, MANTISSA_MAX))
        out = MxMultiplier()(a, a)
        assert np.all(np.abs(out.mant) <= MANTISSA_MAX)


class TestMxAdder:
    def test_matches_float_sum_within_ulp(self):
        rng = np.random.default_rng(2)
        a, b = _random_block(rng), _random_block(rng, scale=0.1)
        out = MxAdder()(a, b)
        exact = a.decode() + b.decode()
        ulp = 2.0 ** (out.exp - MANTISSA_BITS)
        # Each operand's alignment shift truncates up to one output ulp.
        assert np.all(np.abs(out.decode() - exact) <= 2 * ulp)

    def test_result_microexponent_is_zero(self):
        rng = np.random.default_rng(3)
        out = MxAdder()(_random_block(rng), _random_block(rng))
        assert np.all(out.micro == 0)

    def test_result_exponent_is_max_or_renormalized(self):
        rng = np.random.default_rng(4)
        a, b = _random_block(rng), _random_block(rng)
        out = MxAdder()(a, b)
        assert out.exp >= max(a.exp, b.exp)
        assert out.exp <= max(a.exp, b.exp) + 1

    def test_overflow_renormalizes(self):
        mant = np.full(16, MANTISSA_MAX, dtype=np.int64)
        a = MxBlock(exp=0, micro=np.zeros(8), mant=mant.copy())
        out = MxAdder()(a, a)
        assert out.exp == 1
        assert np.all(np.abs(out.mant) <= MANTISSA_MAX)

    def test_truncation_swallows_tiny_operand(self):
        # Hardware shifter truncation: a value 2^10 smaller than the other
        # operand's scale vanishes entirely — the swamping effect.
        big = MxBlock(exp=5, micro=np.zeros(8), mant=np.full(16, 40))
        small = MxBlock(exp=-5, micro=np.zeros(8), mant=np.full(16, 40))
        out = MxAdder()(big, small)
        np.testing.assert_array_equal(out.decode(), big.decode())

    def test_lfsr_rounding_preserves_tiny_operand_in_expectation(self):
        big = MxBlock(exp=5, micro=np.zeros(8), mant=np.full(16, 40))
        small = MxBlock(exp=-2, micro=np.zeros(8), mant=np.full(16, 32))
        adder = MxAdder(lfsr=Lfsr(16, seed=0xBEEF))
        total = np.zeros(GROUP_SIZE)
        trials = 600
        for _ in range(trials):
            total += adder(big, small).decode() - big.decode()
        mean_increment = total / trials
        expected = small.decode()
        # Expectation within 25% of the true small addend.
        assert np.all(np.abs(mean_increment - expected) < 0.25 * np.abs(expected))


class TestDotProductUnit:
    def test_accumulates_exact_dot(self):
        rng = np.random.default_rng(5)
        a, b = _random_block(rng), _random_block(rng)
        unit = DotProductUnit()
        got = unit.accumulate(a, b)
        assert got == pytest.approx(float(a.decode() @ b.decode()))

    def test_reset_clears_accumulator(self):
        rng = np.random.default_rng(6)
        unit = DotProductUnit()
        unit.accumulate(_random_block(rng), _random_block(rng))
        unit.reset()
        assert unit.accumulator == 0.0
