"""Property-based tests (hypothesis) for the quantization substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.quant.arithmetic import MxAdder, MxMultiplier
from repro.quant.mx import GROUP_SIZE, MANTISSA_BITS, MANTISSA_MAX, Mx8Format, MxBlock
from repro.quant.registry import available_formats, get_format

finite_floats = st.floats(
    min_value=-1e4, max_value=1e4, allow_nan=False, allow_subnormal=False
)
vectors = arrays(np.float64, st.integers(1, 96), elements=finite_floats)
group_vectors = arrays(np.float64, GROUP_SIZE, elements=finite_floats)


@given(vectors, st.sampled_from(sorted(available_formats())))
@settings(max_examples=60, deadline=None)
def test_quantize_idempotent_for_all_formats(x, name):
    """Quantizing twice equals quantizing once (lattice projection)."""
    fmt = get_format(name)
    rng = np.random.default_rng(0)
    q1 = fmt.quantize(x, rng=np.random.default_rng(0))
    # Idempotence must hold regardless of the rounding stream: lattice
    # points are fixed points of any rounding mode.
    q2 = fmt.quantize(q1, rng=rng)
    np.testing.assert_array_equal(q1, q2)


@given(vectors, st.sampled_from(sorted(available_formats())))
@settings(max_examples=60, deadline=None)
def test_quantize_preserves_shape_sign_and_zero(x, name):
    fmt = get_format(name)
    q = fmt.quantize(x, rng=np.random.default_rng(1))
    assert q.shape == x.shape
    assert np.all(q[x == 0.0] == 0.0)
    assert np.all(q * x >= 0.0)  # no sign flips


@given(group_vectors)
@settings(max_examples=60, deadline=None)
def test_mx_block_relative_error_bound(values):
    """Every element is within one scaled ulp of its input."""
    block = MxBlock.encode(values)
    amax = np.max(np.abs(values))
    err = np.abs(block.decode() - values)
    # Elements quantize with the group ulp (possibly halved by the pair
    # microexponent); saturation at |mant|=63 adds at most one more ulp.
    assert np.all(err <= amax * 2.0 ** (-MANTISSA_BITS) * 1.001 + 1e-12)


@given(group_vectors, group_vectors)
@settings(max_examples=40, deadline=None)
def test_mx_multiplier_invariants(a_vals, b_vals):
    a, b = MxBlock.encode(a_vals), MxBlock.encode(b_vals)
    out = MxMultiplier()(a, b)
    assert out.exp == a.exp + b.exp
    assert np.all(np.abs(out.mant) <= MANTISSA_MAX)
    assert np.all((out.micro == 0) | (out.micro == 1))
    exact = a.decode() * b.decode()
    ulp = 2.0 ** (out.exp - MANTISSA_BITS)
    assert np.all(np.abs(out.decode() - exact) <= ulp + 1e-12)


@given(group_vectors, group_vectors)
@settings(max_examples=40, deadline=None)
def test_mx_adder_invariants(a_vals, b_vals):
    a, b = MxBlock.encode(a_vals), MxBlock.encode(b_vals)
    out = MxAdder()(a, b)
    assert np.all(out.micro == 0)
    assert max(a.exp, b.exp) <= out.exp <= max(a.exp, b.exp) + 1
    assert np.all(np.abs(out.mant) <= MANTISSA_MAX)
    exact = a.decode() + b.decode()
    ulp = 2.0 ** (out.exp - MANTISSA_BITS)
    assert np.all(np.abs(out.decode() - exact) <= 2 * ulp + 1e-12)


@given(arrays(np.float64, GROUP_SIZE, elements=finite_floats))
@settings(max_examples=40, deadline=None)
def test_mx8_absolute_error_bounded_by_group_ulp(x):
    """|Q(x) - x| <= amax * 2^-6 element-wise: no element moves by more
    than one group-scaled mantissa step (tiny elements may round up by a
    fraction of the shared ulp, never more)."""
    q = Mx8Format().quantize(x)
    amax = np.max(np.abs(x))
    assert np.all(np.abs(q - x) <= amax * 2.0**-MANTISSA_BITS + 1e-12)
