"""Unit tests for the MX8 block floating point format."""

import numpy as np
import pytest

from repro.quant.mx import (
    EXPONENT_MAX,
    GROUP_SIZE,
    MANTISSA_BITS,
    MANTISSA_MAX,
    Mx8Format,
    MxBlock,
)
from repro.quant.rounding import RoundingMode


def test_bits_per_value_is_exactly_eight():
    assert Mx8Format().bits_per_value == 8.0


def test_zero_tensor_roundtrips_exactly():
    fmt = Mx8Format()
    x = np.zeros(64)
    assert np.array_equal(fmt.quantize(x), x)


def test_relative_error_bounded_by_mantissa_width():
    rng = np.random.default_rng(0)
    fmt = Mx8Format()
    x = rng.normal(size=(8, 128))
    q = fmt.quantize(x)
    # Group max elements have mantissa in (32, 64]; worst relative error for
    # the largest element of each group is one half ulp of a 6-bit mantissa.
    amax = np.max(np.abs(x.reshape(8, -1, GROUP_SIZE)), axis=-1)
    qmax_err = np.max(
        np.abs((q - x).reshape(8, -1, GROUP_SIZE)), axis=-1
    )
    assert np.all(qmax_err <= amax * 2.0 ** (-MANTISSA_BITS + 1))


def test_quantize_is_idempotent():
    rng = np.random.default_rng(1)
    fmt = Mx8Format()
    x = rng.normal(size=256)
    q = fmt.quantize(x)
    assert np.array_equal(fmt.quantize(q), q)


def test_pair_microexponent_recovers_precision_for_small_pairs():
    # One huge pair and one tiny pair: without the microexponent the tiny
    # pair would quantize with the huge pair's ulp.
    x = np.zeros(GROUP_SIZE)
    x[0] = 1.0
    x[2] = 1.0 / 128.0  # two octaves below: microexponent saturates at 1
    q = Mx8Format().quantize(x)
    ulp_with_micro = 2.0 ** (1 - 1 - MANTISSA_BITS)  # exp=1, micro=1
    assert abs(q[2] - x[2]) <= ulp_with_micro / 2


def test_non_multiple_of_group_length_is_preserved():
    rng = np.random.default_rng(2)
    x = rng.normal(size=37)
    q = Mx8Format().quantize(x)
    assert q.shape == x.shape


def test_stochastic_rounding_unbiased_on_midpoints():
    rng = np.random.default_rng(3)
    fmt = Mx8Format(rounding=RoundingMode.STOCHASTIC)
    # A value exactly halfway between two mantissa steps relative to a
    # max element of 1.0 (exp=1 -> ulp = 2**-5).
    x = np.zeros((4000, GROUP_SIZE))
    x[:, 0] = 1.0
    x[:, 1] = 1.5 * 2.0**-5
    q = fmt.quantize(x, rng=rng)
    mean = q[:, 1].mean()
    assert abs(mean - x[0, 1]) < 0.05 * x[0, 1]


def test_stochastic_requires_rng():
    fmt = Mx8Format(rounding=RoundingMode.STOCHASTIC)
    with pytest.raises(ValueError):
        fmt.quantize(np.ones(16))


class TestMxBlock:
    def test_encode_decode_roundtrip_error(self):
        rng = np.random.default_rng(4)
        values = rng.normal(size=GROUP_SIZE)
        block = MxBlock.encode(values)
        err = np.abs(block.decode() - values)
        assert np.max(err) <= np.max(np.abs(values)) * 2.0**-MANTISSA_BITS

    def test_encode_matches_vectorized_format(self):
        rng = np.random.default_rng(5)
        values = rng.normal(size=GROUP_SIZE)
        block = MxBlock.encode(values)
        vec = Mx8Format().quantize(values)
        np.testing.assert_allclose(block.decode(), vec, rtol=0, atol=0)

    def test_invalid_mantissa_rejected(self):
        with pytest.raises(ValueError):
            MxBlock(exp=0, micro=np.zeros(8), mant=np.full(16, MANTISSA_MAX + 1))

    def test_invalid_micro_rejected(self):
        with pytest.raises(ValueError):
            MxBlock(exp=0, micro=np.full(8, 2), mant=np.zeros(16))

    def test_exponent_clipped_to_field_range(self):
        big = np.full(GROUP_SIZE, 1e30)
        block = MxBlock.encode(big)
        assert block.exp <= EXPONENT_MAX
