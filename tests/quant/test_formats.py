"""Unit tests for int8/fp8/fp16 storage formats and the registry."""

import numpy as np
import pytest

from repro.quant import (
    FIG4_FORMATS,
    Float16Format,
    Int8GroupFormat,
    RoundingMode,
    available_formats,
    e4m3,
    e5m2,
    get_format,
)


class TestInt8Group:
    def test_bits_per_value_includes_scale(self):
        fmt = Int8GroupFormat(group=32, scale_bits=16)
        assert fmt.bits_per_value == pytest.approx(8.5)

    def test_roundtrip_error_within_half_step(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(4, 64))
        fmt = Int8GroupFormat()
        q = fmt.quantize(x)
        amax = np.max(np.abs(x.reshape(4, -1, 32)), axis=-1, keepdims=True)
        step = amax / 127
        err = np.abs(q - x).reshape(4, -1, 32)
        # fp16 storage of the scale adds a small extra tolerance.
        assert np.all(err <= step * 0.505 + 1e-12)

    def test_zero_group_is_exact(self):
        q = Int8GroupFormat().quantize(np.zeros(32))
        assert np.array_equal(q, np.zeros(32))

    def test_invalid_group_rejected(self):
        with pytest.raises(ValueError):
            Int8GroupFormat(group=0)


class TestMiniFloat:
    def test_e4m3_saturates_at_448(self):
        q = e4m3().quantize(np.array([1e6, -1e6]))
        assert np.array_equal(q, [448.0, -448.0])

    def test_e5m2_saturates_at_57344(self):
        q = e5m2().quantize(np.array([1e9]))
        assert q[0] == 57344.0

    def test_representable_values_are_fixed_points(self):
        fmt = e4m3()
        # 1.5 = 1.100b * 2^0 is representable with 3 mantissa bits.
        vals = np.array([1.5, -0.25, 448.0, 0.0])
        assert np.array_equal(fmt.quantize(vals), vals)

    def test_subnormal_range_has_constant_step(self):
        fmt = e5m2()
        tiny = 2.0**-17  # below min normal 2^-14, step = 2^-16
        q = fmt.quantize(np.array([tiny]))
        assert q[0] in (0.0, 2.0**-16)

    def test_e5m2_swallows_small_addends_nearest(self):
        # The swamping mechanism: 1.0 + eps rounds back to 1.0 when eps is
        # below half an ulp (ulp(1.0) = 2^-2 for 2 mantissa bits).
        fmt = e5m2()
        q = fmt.quantize(np.array([1.0 + 2.0**-4]))
        assert q[0] == 1.0

    def test_stochastic_preserves_small_addends_in_expectation(self):
        fmt = e5m2(rounding=RoundingMode.STOCHASTIC)
        rng = np.random.default_rng(1)
        eps = 2.0**-5
        q = fmt.quantize(np.full(20000, 1.0 + eps), rng=rng)
        assert abs(q.mean() - (1.0 + eps)) < 0.01 * eps + 5e-4


class TestRegistry:
    def test_fig4_formats_all_available(self):
        for name in FIG4_FORMATS:
            assert get_format(name).name == name

    def test_unknown_format_raises_with_choices(self):
        with pytest.raises(KeyError, match="mx8"):
            get_format("bogus")

    def test_available_formats_instantiable(self):
        for name in available_formats():
            fmt = get_format(name)
            assert np.isfinite(fmt.bits_per_value)

    def test_fp16_reference_is_close(self):
        x = np.array([0.1, -3.14159, 1e-3])
        q = Float16Format().quantize(x)
        np.testing.assert_allclose(q, x, rtol=1e-3)
