"""Integration tests: the five serving systems vs. the paper's headlines."""

import pytest

from repro.models import spec_for
from repro.perf.energy import EnergyModel, step_energy_for
from repro.perf.gpu import h100
from repro.perf.operators import OpKind
from repro.perf.parallelism import nvlink4
from repro.perf.system import ServingSystem, SystemKind, build_system


class TestFig3Breakdown:
    def test_retnet_state_share_grows_with_batch(self):
        """Paper: 41.9% at batch 32 -> 73.8% at batch 128."""
        sys = build_system(SystemKind.GPU, "small")
        spec = spec_for("RetNet")
        share32 = sys.step_latency(spec, 32, 2048).fraction(OpKind.STATE_UPDATE)
        share128 = sys.step_latency(spec, 128, 2048).fraction(OpKind.STATE_UPDATE)
        assert share32 == pytest.approx(0.419, abs=0.08)
        assert share128 == pytest.approx(0.738, abs=0.08)

    def test_zamba2_attention_dominates_at_large_batch(self):
        sys = build_system(SystemKind.GPU, "small")
        spec = spec_for("Zamba2")
        step = sys.step_latency(spec, 128, 3072)
        assert step.fraction(OpKind.ATTENTION) > step.fraction(OpKind.STATE_UPDATE)


class TestFig13Latency:
    def test_state_update_reduction_vs_gpu(self):
        """Paper: 14.6x lower state-update latency than GPU."""
        spec = spec_for("RetNet", "large")
        t = {
            k: build_system(k, "large").step_latency(spec, 128, 3072)
            .seconds_by_kind[OpKind.STATE_UPDATE]
            for k in (SystemKind.GPU, SystemKind.GPU_PIM, SystemKind.PIMBA)
        }
        assert t[SystemKind.GPU] / t[SystemKind.PIMBA] == pytest.approx(14.6, rel=0.25)
        assert t[SystemKind.GPU_PIM] / t[SystemKind.PIMBA] == pytest.approx(
            6.9, rel=0.25
        )

    def test_attention_reduction_smaller_than_state_update(self):
        """Paper: 6.3x/2.1x for attention — interleaving does not help
        read-only sweeps, only MX8 does."""
        spec = spec_for("OPT", "large")
        t = {
            k: build_system(k, "large").step_latency(spec, 128, 3072)
            .seconds_by_kind[OpKind.ATTENTION]
            for k in (SystemKind.GPU, SystemKind.GPU_PIM, SystemKind.PIMBA)
        }
        gpu_ratio = t[SystemKind.GPU] / t[SystemKind.PIMBA]
        pim_ratio = t[SystemKind.GPU_PIM] / t[SystemKind.PIMBA]
        assert 5.0 < gpu_ratio < 12.0
        assert 1.5 < pim_ratio < 3.5
        assert gpu_ratio < 14.6  # smaller than the state-update gain


class TestFig12Throughput:
    @pytest.mark.parametrize("scale", ["small", "large"])
    def test_ordering_gpu_q_pim_pimba(self, scale):
        spec = spec_for("Mamba-2", scale)
        tps = {
            k: build_system(k, scale).generation_metrics(spec, 128).tokens_per_second
            for k in SystemKind
            if k is not SystemKind.NEUPIMS
        }
        assert tps[SystemKind.PIMBA] > tps[SystemKind.GPU_PIM] > tps[SystemKind.GPU]
        assert tps[SystemKind.GPU_Q] > tps[SystemKind.GPU]

    def test_gains_grow_with_batch(self):
        spec = spec_for("RetNet", "large")
        gains = []
        for batch in (32, 128):
            base = build_system(SystemKind.GPU, "large").generation_metrics(spec, batch)
            pimba = build_system(SystemKind.PIMBA, "large").generation_metrics(
                spec, batch
            )
            gains.append(pimba.tokens_per_second / base.tokens_per_second)
        assert gains[1] > gains[0]

    def test_average_band_matches_paper(self):
        """Paper: GPU+Q and GPU+PIM ~1.4x, Pimba ~1.9x on average."""
        import numpy as np
        ratios = {SystemKind.GPU_Q: [], SystemKind.GPU_PIM: [], SystemKind.PIMBA: []}
        for name in ("RetNet", "Mamba-2", "Zamba2", "OPT"):
            spec = spec_for(name, "large")
            base = build_system(SystemKind.GPU, "large").generation_metrics(spec, 64)
            for kind in ratios:
                m = build_system(kind, "large").generation_metrics(spec, 64)
                ratios[kind].append(m.tokens_per_second / base.tokens_per_second)
        geo = {k: float(np.exp(np.mean(np.log(v)))) for k, v in ratios.items()}
        assert 1.1 < geo[SystemKind.GPU_Q] < 1.8
        assert 1.1 < geo[SystemKind.GPU_PIM] < 1.9
        assert 1.5 < geo[SystemKind.PIMBA] < 3.0
        assert geo[SystemKind.PIMBA] > geo[SystemKind.GPU_PIM]


class TestFig15NeuPims:
    def test_pimba_lower_latency_and_memory(self):
        spec = spec_for("Zamba2", "large")
        pimba = build_system(SystemKind.PIMBA, "large")
        neupims = build_system(SystemKind.NEUPIMS, "large")
        for out_tokens in (125, 512, 1024):
            seq = 1024 + out_tokens
            t_p = pimba.step_latency(spec, 128, seq).total
            t_n = neupims.step_latency(spec, 128, seq).total
            assert t_p < t_n
            assert pimba.memory_usage(spec, 128, seq) < neupims.memory_usage(
                spec, 128, seq
            )

    def test_latency_scales_with_output_tokens_for_both(self):
        spec = spec_for("Zamba2", "large")
        for kind in (SystemKind.PIMBA, SystemKind.NEUPIMS):
            sys = build_system(kind, "large")
            short = sys.step_latency(spec, 128, 1024 + 125).total
            long = sys.step_latency(spec, 128, 1024 + 1024).total
            assert long > short


class TestFig16H100:
    def test_h100_trend_matches_a100(self):
        """Paper: 1.8x / 1.3x over GPU / GPU+PIM on H100."""
        spec = spec_for("Mamba-2", "large")
        kw = dict(gpu=h100(), link=nvlink4())
        base = ServingSystem(SystemKind.GPU, n_devices=8, **kw)
        pim = ServingSystem(SystemKind.GPU_PIM, n_devices=8, **kw)
        pimba = ServingSystem(SystemKind.PIMBA, n_devices=8, **kw)
        t_base = base.generation_metrics(spec, 128).tokens_per_second
        t_pim = pim.generation_metrics(spec, 128).tokens_per_second
        t_pimba = pimba.generation_metrics(spec, 128).tokens_per_second
        assert 1.3 < t_pimba / t_base < 3.5
        assert 1.1 < t_pimba / t_pim < 2.5


class TestFig14Energy:
    def test_pimba_saves_energy(self):
        """Paper: 2.2x vs GPU, 1.3x vs GPU+PIM on average."""
        spec = spec_for("Mamba-2", "large")
        e = {k: step_energy_for(k, spec, 128, 3072).total
             for k in (SystemKind.GPU, SystemKind.GPU_PIM, SystemKind.PIMBA)}
        assert 1.8 < e[SystemKind.GPU] / e[SystemKind.PIMBA] < 3.5
        assert 1.05 < e[SystemKind.GPU_PIM] / e[SystemKind.PIMBA] < 1.6

    def test_state_update_io_dominates_gpu_energy_for_retnet(self):
        spec = spec_for("RetNet", "large")
        bd = step_energy_for(SystemKind.GPU, spec, 128, 3072)
        assert bd.fraction("State Update (I/O)") > 0.4

    def test_pim_compute_energy_is_small(self):
        spec = spec_for("Mamba-2", "large")
        bd = step_energy_for(SystemKind.PIMBA, spec, 128, 3072)
        assert bd.fraction("State Update (Compute)") < 0.1

    def test_breakdown_sums(self):
        sys = build_system(SystemKind.PIMBA, "large")
        bd = EnergyModel(sys).step_energy(spec_for("Zamba2", "large"), 64, 2048)
        assert bd.total == pytest.approx(sum(bd.joules_by_category.values()))


class TestSystemParity:
    """Every system produces finite, positive, well-formed step costs for
    every model spec and batch size (previously only covered indirectly
    through the figure benchmarks)."""

    @pytest.mark.parametrize("kind", list(SystemKind))
    @pytest.mark.parametrize("model", ["RetNet", "GLA", "HGRN2", "Mamba-2",
                                       "Zamba2", "OPT"])
    @pytest.mark.parametrize("batch", [1, 32, 128])
    def test_step_costs_finite_and_positive(self, kind, model, batch):
        import math

        spec = spec_for(model)
        system = build_system(kind, "small")
        step = system.step_latency(spec, batch, 2048)
        assert math.isfinite(step.total) and step.total > 0
        for op, seconds in step.seconds_by_kind.items():
            assert math.isfinite(seconds) and seconds > 0, (kind, op)
            assert op in step.placements
        assert step.total == pytest.approx(sum(step.seconds_by_kind.values()))

        prefill = system.prefill_latency(spec, batch, 2048)
        assert math.isfinite(prefill) and prefill > 0
        memory = system.memory_usage(spec, batch, 2048)
        assert math.isfinite(memory) and memory > 0

    @pytest.mark.parametrize("kind", list(SystemKind))
    def test_large_scale_parity(self, kind):
        import math

        spec = spec_for("Zamba2", "large")
        step = build_system(kind, "large").step_latency(spec, 64, 3072)
        assert math.isfinite(step.total) and step.total > 0
        assert OpKind.COMMUNICATION in step.seconds_by_kind

    def test_offloaded_ops_are_placed_on_pim(self):
        spec = spec_for("Zamba2")
        step = build_system(SystemKind.PIMBA, "small").step_latency(
            spec, 32, 2048
        )
        assert step.placements[OpKind.STATE_UPDATE] == "PIM"
        assert step.placements[OpKind.ATTENTION] == "PIM"
        gpu_step = build_system(SystemKind.GPU, "small").step_latency(
            spec, 32, 2048
        )
        assert gpu_step.placements[OpKind.STATE_UPDATE] != "PIM"


class TestMemoryUsage:
    def test_fig1a_mamba2_uses_less_memory_than_transformer(self):
        sys = build_system(SystemKind.GPU, "small")
        mamba = sys.memory_usage(spec_for("Mamba-2"), 32, 4096)
        opt = sys.memory_usage(spec_for("OPT"), 32, 4096)
        assert opt / mamba > 1.8  # paper: 2.3x

    def test_transformer_memory_grows_with_seq(self):
        sys = build_system(SystemKind.GPU, "small")
        spec = spec_for("OPT")
        assert sys.memory_usage(spec, 32, 8192) > 1.5 * sys.memory_usage(spec, 32, 2048)

    def test_su_llm_memory_constant_in_seq(self):
        sys = build_system(SystemKind.GPU, "small")
        spec = spec_for("RetNet")
        assert sys.memory_usage(spec, 32, 8192) == sys.memory_usage(spec, 32, 128)
