"""Focused tests for the energy model internals and roofline helpers."""

import numpy as np
import pytest

from repro.models import spec_for
from repro.perf.energy import CATEGORIES, EnergyModel
from repro.perf.gpu import GpuModel, a100
from repro.perf.operators import OpCost, OpKind, arithmetic_intensity, ops_by_kind
from repro.perf.roofline import roofline_points
from repro.perf.system import SystemKind, build_system


class TestEnergyModel:
    @pytest.fixture(scope="class")
    def breakdowns(self):
        spec = spec_for("Zamba2", "large")
        return {
            kind: EnergyModel(build_system(kind, "large")).step_energy(spec, 64, 2048)
            for kind in (SystemKind.GPU, SystemKind.PIMBA)
        }

    def test_all_categories_present(self, breakdowns):
        for bd in breakdowns.values():
            assert set(bd.joules_by_category) == set(CATEGORIES)

    def test_gemm_energy_identical_across_systems(self, breakdowns):
        gpu = breakdowns[SystemKind.GPU].joules_by_category["GEMM"]
        pimba = breakdowns[SystemKind.PIMBA].joules_by_category["GEMM"]
        assert pimba == pytest.approx(gpu, rel=0.01)

    def test_pimba_state_io_much_lower(self, breakdowns):
        gpu = breakdowns[SystemKind.GPU].joules_by_category["State Update (I/O)"]
        pimba = breakdowns[SystemKind.PIMBA].joules_by_category["State Update (I/O)"]
        # MX8 halves array bits and the channel crossing disappears.
        assert pimba < gpu / 4

    def test_fractions_sum_to_one(self, breakdowns):
        bd = breakdowns[SystemKind.GPU]
        total = sum(bd.fraction(c) for c in CATEGORIES)
        assert total == pytest.approx(1.0)

    def test_custom_coefficients_scale(self):
        spec = spec_for("RetNet", "large")
        sys = build_system(SystemKind.GPU, "large")
        low = EnergyModel(sys, host_pj_per_bit=0.0).step_energy(spec, 64, 2048)
        high = EnergyModel(sys, host_pj_per_bit=10.0).step_energy(spec, 64, 2048)
        assert high.total > low.total


class TestRooflineHelpers:
    def test_intensity_of_zero_bytes_is_inf(self):
        op = OpCost(OpKind.GEMM, flops=10.0, bytes=0.0)
        assert arithmetic_intensity(op) == float("inf")

    def test_points_skip_communication(self):
        points = roofline_points(spec_for("RetNet", "large"), 32, 1024)
        assert OpKind.COMMUNICATION not in points

    def test_attained_never_exceeds_peak(self):
        gpu = GpuModel(a100())
        points = roofline_points(spec_for("OPT"), 128, 2048)
        for p in points.values():
            assert p.attained_flops <= gpu.spec.peak_fp16_flops

    def test_ops_by_kind_merges(self):
        ops = [OpCost(OpKind.GEMM, 1, 2), OpCost(OpKind.GEMM, 3, 4, 5)]
        merged = ops_by_kind(ops)
        assert merged[OpKind.GEMM].flops == 4
        assert merged[OpKind.GEMM].bytes == 6
        assert merged[OpKind.GEMM].comm_bytes == 5

    def test_op_scaled(self):
        op = OpCost(OpKind.OTHER, 2, 4, 6).scaled(0.5)
        assert (op.flops, op.bytes, op.comm_bytes) == (1, 2, 3)


class TestSystemEdgeCases:
    def test_zero_seq_len_transformer_has_no_attention(self):
        sys = build_system(SystemKind.GPU, "small")
        step = sys.step_latency(spec_for("OPT"), 8, 0)
        assert OpKind.ATTENTION not in step.seconds_by_kind

    def test_placements_recorded(self):
        sys = build_system(SystemKind.PIMBA, "large")
        step = sys.step_latency(spec_for("Zamba2", "large"), 16, 1024)
        assert step.placements[OpKind.STATE_UPDATE] == "PIM"
        assert step.placements[OpKind.ATTENTION] == "PIM"
        assert step.placements[OpKind.GEMM] == "A100"

    def test_neupims_offloads_only_attention(self):
        sys = build_system(SystemKind.NEUPIMS, "large")
        step = sys.step_latency(spec_for("Zamba2", "large"), 16, 1024)
        assert step.placements[OpKind.ATTENTION] == "PIM"
        assert step.placements[OpKind.STATE_UPDATE] == "A100"

    def test_prefill_scales_with_input_len(self):
        sys = build_system(SystemKind.GPU, "small")
        spec = spec_for("Mamba-2")
        short = sys.prefill_latency(spec, 8, 512)
        long = sys.prefill_latency(spec, 8, 2048)
        assert long == pytest.approx(4 * short, rel=0.01)

    def test_throughput_metric_consistency(self):
        sys = build_system(SystemKind.PIMBA, "small")
        m = sys.generation_metrics(spec_for("GLA"), 32, 1024, 256)
        assert m.tokens_per_second == pytest.approx(
            32 * 256 / m.decode_seconds
        )
