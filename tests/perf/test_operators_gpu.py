"""Tests for op-cost accounting, the GPU roofline, and parallelism."""

import pytest

from repro.models import spec_for
from repro.perf.gpu import GpuModel, a100, h100
from repro.perf.operators import (
    OpCost,
    OpKind,
    PrecisionConfig,
    arithmetic_intensity,
    generation_step_ops,
    ops_by_kind,
)
from repro.perf.parallelism import all_reduce_seconds, communication_seconds, nvlink3
from repro.perf.roofline import roofline_points


class TestGenerationStepOps:
    def test_su_llm_has_state_update_no_attention(self):
        ops = ops_by_kind(generation_step_ops(spec_for("RetNet"), 32, 2048))
        assert OpKind.STATE_UPDATE in ops
        assert OpKind.ATTENTION not in ops

    def test_transformer_has_attention_no_state_update(self):
        ops = ops_by_kind(generation_step_ops(spec_for("OPT"), 32, 2048))
        assert OpKind.ATTENTION in ops
        assert OpKind.STATE_UPDATE not in ops

    def test_hybrid_has_both_plus_mamba_stages(self):
        ops = ops_by_kind(generation_step_ops(spec_for("Zamba2"), 32, 2048))
        for kind in (OpKind.STATE_UPDATE, OpKind.ATTENTION,
                     OpKind.DISCRETIZATION, OpKind.CAUSAL_CONV):
            assert kind in ops

    def test_state_update_scales_with_batch_attention_with_seq(self):
        spec = spec_for("Zamba2")
        a = ops_by_kind(generation_step_ops(spec, 32, 1024))
        b = ops_by_kind(generation_step_ops(spec, 64, 1024))
        c = ops_by_kind(generation_step_ops(spec, 32, 2048))
        assert b[OpKind.STATE_UPDATE].bytes == pytest.approx(
            2 * a[OpKind.STATE_UPDATE].bytes
        )
        assert a[OpKind.STATE_UPDATE].bytes == c[OpKind.STATE_UPDATE].bytes
        assert c[OpKind.ATTENTION].bytes > 1.9 * a[OpKind.ATTENTION].bytes

    def test_quantized_precision_halves_state_traffic(self):
        spec = spec_for("Mamba-2")
        fp16 = ops_by_kind(generation_step_ops(spec, 32, 0))
        mx8 = ops_by_kind(
            generation_step_ops(spec, 32, 0, PrecisionConfig(state_bytes=1.0))
        )
        ratio = fp16[OpKind.STATE_UPDATE].bytes / mx8[OpKind.STATE_UPDATE].bytes
        assert 1.8 < ratio < 2.0  # operands stay fp16

    def test_tensor_parallel_shards_work_and_adds_comm(self):
        spec = spec_for("RetNet", "large")
        one = ops_by_kind(generation_step_ops(spec, 32, 2048, tp_degree=1))
        eight = ops_by_kind(generation_step_ops(spec, 32, 2048, tp_degree=8))
        assert eight[OpKind.GEMM].flops == pytest.approx(one[OpKind.GEMM].flops / 8)
        assert OpKind.COMMUNICATION in eight
        assert OpKind.COMMUNICATION not in one

    def test_invalid_args_rejected(self):
        with pytest.raises(ValueError):
            generation_step_ops(spec_for("OPT"), 0, 10)
        with pytest.raises(ValueError):
            generation_step_ops(spec_for("OPT"), 1, -1)


class TestRoofline:
    def test_fig1b_state_update_intensity_above_attention(self):
        """Fig. 1(b): state update has higher arithmetic intensity than
        attention (the paper measures ~4x with fp32 attention
        intermediates; pure fp16 byte counting gives ~1.5x), and both sit
        orders of magnitude below the GEMM ridge."""
        su = ops_by_kind(generation_step_ops(spec_for("Mamba-2"), 32, 2048))
        at = ops_by_kind(generation_step_ops(spec_for("OPT"), 32, 2048))
        i_su = arithmetic_intensity(su[OpKind.STATE_UPDATE])
        i_at = arithmetic_intensity(at[OpKind.ATTENTION])
        assert i_su > 1.2 * i_at
        ridge = GpuModel(a100()).ridge_intensity()
        assert i_su < ridge / 10 and i_at < ridge / 10

    def test_both_memory_bound_gemm_compute_bound(self):
        points = roofline_points(spec_for("Zamba2"), 128, 2048)
        assert points[OpKind.STATE_UPDATE].memory_bound
        assert points[OpKind.ATTENTION].memory_bound
        assert not points[OpKind.GEMM].memory_bound

    def test_ridge_point_near_published_a100_value(self):
        model = GpuModel(a100())
        # ~160 FLOP/byte raw; efficiency factors move it moderately.
        assert 50 < model.ridge_intensity() < 300


class TestGpuModel:
    def test_memory_bound_op_scales_with_bytes(self):
        model = GpuModel()
        t1 = model.op_seconds(OpCost(OpKind.STATE_UPDATE, 1e6, 1e9))
        t2 = model.op_seconds(OpCost(OpKind.STATE_UPDATE, 1e6, 2e9))
        assert t2 == pytest.approx(2 * t1, rel=0.02)

    def test_h100_faster_than_a100(self):
        op = OpCost(OpKind.GEMM, 1e13, 1e9)
        assert GpuModel(h100()).op_seconds(op) < GpuModel(a100()).op_seconds(op)

    def test_communication_not_priced_here(self):
        with pytest.raises(ValueError):
            GpuModel().op_seconds(OpCost(OpKind.COMMUNICATION, 0, 0, 1e6))


class TestParallelism:
    def test_single_device_free(self):
        assert all_reduce_seconds(1e9, 1, nvlink3()) == 0.0

    def test_ring_scaling_factor(self):
        t2 = all_reduce_seconds(1e9, 2, nvlink3())
        t8 = all_reduce_seconds(1e9, 8, nvlink3())
        # wire term: 2(N-1)/N -> 1.0 vs 1.75 of payload/bw
        assert t8 / t2 == pytest.approx(1.75, rel=0.05)

    def test_comm_seconds_counts_latency_per_reduce(self):
        few = communication_seconds(1e8, 10, 8, nvlink3())
        many = communication_seconds(1e8, 1000, 8, nvlink3())
        assert many > few

    def test_invalid_devices(self):
        with pytest.raises(ValueError):
            all_reduce_seconds(1.0, 0, nvlink3())
