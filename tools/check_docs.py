#!/usr/bin/env python
"""Documentation checks: markdown links resolve, README matches the registry.

Two families of checks, both run by the CI ``docs`` job and by
``tests/test_docs.py`` (so `pytest` catches drift before CI does):

* **Links** — every relative markdown link in every ``*.md`` file of the
  repository must point at an existing file (and, for ``#fragment``
  links into markdown files, at an existing heading).  External links
  (``http``/``https``/``mailto``) are not fetched.
* **Registry sync** — the README's experiment-catalog tables (Figures /
  Sweeps / Trial functions) must list *exactly* the names registered in
  ``repro.experiments``: a new sweep without a README row fails, as does
  a README row whose sweep was renamed or removed.

Run from the repository root (or pass it as ``argv[1]``):

    PYTHONPATH=src python tools/check_docs.py
"""

from __future__ import annotations

import pathlib
import re
import sys

#: directories never scanned for markdown
SKIPPED_DIRS = {".git", ".repro-cache", "__pycache__", ".pytest_cache"}

#: markdown inline link: [text](target) — images share the syntax
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: fenced code blocks, whose bracketed text is not a link
_FENCE = re.compile(r"```.*?```", re.DOTALL)

_SECTIONS = {
    "figures": "### Figures",
    "sweeps": "### Sweeps",
    "trials": "### Trial functions",
}


def markdown_files(root: pathlib.Path) -> list[pathlib.Path]:
    return sorted(
        path
        for path in root.rglob("*.md")
        if not any(part in SKIPPED_DIRS for part in path.parts)
    )


def heading_slugs(markdown: str) -> set[str]:
    """GitHub-style anchor slugs of every heading in ``markdown``."""
    slugs = set()
    for line in _FENCE.sub("", markdown).splitlines():
        if not line.startswith("#"):
            continue
        title = line.lstrip("#").strip()
        slug = re.sub(r"[^\w\s-]", "", title.lower())
        slugs.add(re.sub(r"\s+", "-", slug.strip()))
    return slugs


def check_links(root: pathlib.Path) -> list[str]:
    """Every relative link in every markdown file resolves."""
    errors = []
    for path in markdown_files(root):
        raw = path.read_text(encoding="utf-8")
        text = _FENCE.sub("", raw)
        for target in _LINK.findall(text):
            if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # http:, mailto:
                continue
            if target.startswith("#"):
                if target[1:] not in heading_slugs(raw):
                    errors.append(f"{path}: broken anchor {target!r}")
                continue
            file_part, _, fragment = target.partition("#")
            resolved = (path.parent / file_part).resolve()
            if not resolved.exists():
                errors.append(f"{path}: broken link {target!r}")
                continue
            if fragment and resolved.suffix == ".md":
                slugs = heading_slugs(resolved.read_text(encoding="utf-8"))
                if fragment not in slugs:
                    errors.append(
                        f"{path}: link {target!r} names a missing heading"
                    )
    return errors


def table_names(readme: str, section_heading: str) -> set[str]:
    """First-column backquoted names of the table under ``section_heading``."""
    try:
        start = readme.index(section_heading)
    except ValueError:
        return set()
    section = readme[start + len(section_heading):]
    next_heading = re.search(r"\n#{2,3} ", section)
    if next_heading:
        section = section[: next_heading.start()]
    return set(re.findall(r"^\| `([^`]+)` \|", section, re.MULTILINE))


def registry_names() -> dict[str, set[str]]:
    """Built-in catalog names only: the README documents what ships with
    the package, so trials/sweeps registered ad hoc by callers (test
    suites do this) are excluded by their origin module."""
    from repro.experiments import registry
    from repro.experiments.figures import FIGURES

    return {
        "figures": set(FIGURES),
        "sweeps": {
            name
            for name in registry.sweep_names()
            if registry.get_sweep(name).__module__.startswith("repro.")
        },
        "trials": {
            name
            for name in registry.trial_names()
            if registry.trial_origin(name).startswith("repro.")
        },
    }


def check_registry_sync(root: pathlib.Path) -> list[str]:
    """The README catalog tables list exactly the registered names."""
    readme = (root / "README.md").read_text(encoding="utf-8")
    errors = []
    for kind, registered in registry_names().items():
        heading = _SECTIONS[kind]
        documented = table_names(readme, heading)
        if not documented:
            errors.append(f"README.md: no table found under {heading!r}")
            continue
        for name in sorted(registered - documented):
            errors.append(
                f"README.md: registered {kind[:-1]} {name!r} has no row "
                f"under {heading!r}"
            )
        for name in sorted(documented - registered):
            errors.append(
                f"README.md: row {name!r} under {heading!r} matches no "
                f"registered {kind[:-1]}"
            )
    return errors


def main(argv: list[str]) -> int:
    root = pathlib.Path(argv[1] if len(argv) > 1 else ".").resolve()
    errors = check_links(root) + check_registry_sync(root)
    for error in errors:
        print(f"docs check: {error}", file=sys.stderr)
    if not errors:
        n = len(markdown_files(root))
        print(f"docs check: {n} markdown files ok, catalog in sync")
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
