#!/usr/bin/env python
"""Regenerate the committed Perfetto golden trace.

``tests/serving/test_telemetry.py`` pins the trace-event exporter's
output byte-for-byte against ``tests/serving/data/perfetto_golden.json``.
When the export format changes *on purpose*, rerun this script and
commit the refreshed golden together with the exporter change:

    PYTHONPATH=src python tools/make_perfetto_golden.py

The run must stay identical to ``recorded_run`` in the test module:
the ``paged+tight`` scheduler from the equivalence grid on an
8-request poisson trace (seed 3), so the golden covers prefills,
coalesced decode runs, preemption/restore intervals, and every counter
track.
"""

import json
import pathlib
import sys

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
)

from repro.models import spec_for  # noqa: E402
from repro.perf.system import SystemKind, build_system  # noqa: E402
from repro.serving import (  # noqa: E402
    MemoryModel,
    PagedScheduler,
    ServingEngine,
    TimelineCollector,
    fixed_lengths,
    poisson_trace,
    validate_trace_events,
)


def main() -> int:
    spec = spec_for("Zamba2")
    system = build_system(SystemKind.PIMBA, "small")
    memory = MemoryModel.for_system(system, spec)
    scheduler = PagedScheduler(
        memory,
        memory.weights_bytes + 2.93 * memory.request_bytes(256, 32),
        block_size=16,
        max_batch=8,
    )
    trace = poisson_trace(10.0, 8, fixed_lengths(256, 32), seed=3)
    collector = TimelineCollector()
    ServingEngine(system, spec, scheduler).serve(trace, collector=collector)
    payload = collector.timeline.to_trace_events()
    errors = validate_trace_events(payload)
    if errors:
        print("refusing to write an invalid golden:", *errors, sep="\n  ")
        return 1
    out = (
        pathlib.Path(__file__).resolve().parent.parent
        / "tests" / "serving" / "data" / "perfetto_golden.json"
    )
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=1) + "\n")
    print(f"wrote {len(payload['traceEvents'])} events to {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
